package netdimm

import (
	"io"
	"time"

	"netdimm/internal/experiments"
	"netdimm/internal/obs"
)

// Observation carries the instrumentation collected by one observed run:
// per-packet lifecycle spans (exported as Chrome trace-event JSON loadable
// in ui.perfetto.dev) and the metrics registry. A nil Observation — what
// the Run*Observed entry points return when cfg.Obs is zero — is safe to
// query and reports nothing collected.
type Observation struct {
	o *obs.Observer
}

func newObservation(o *obs.Observer) *Observation {
	if o == nil {
		return nil
	}
	return &Observation{o: o}
}

// Enabled reports whether the run collected any instrumentation.
func (ob *Observation) Enabled() bool { return ob != nil && ob.o != nil }

// WriteTrace writes the collected spans and series as Chrome trace-event
// JSON (open the file in ui.perfetto.dev or chrome://tracing). Writing a
// disabled observation produces a valid, empty trace.
func (ob *Observation) WriteTrace(w io.Writer) error {
	if !ob.Enabled() {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[]}`+"\n")
		return err
	}
	return ob.o.WriteTrace(w)
}

// HasMetrics reports whether any metric was registered.
func (ob *Observation) HasMetrics() bool { return ob.Enabled() && ob.o.HasMetrics() }

// MetricsTable renders every collected counter, gauge and series as an
// aligned text table ("" when nothing was collected).
func (ob *Observation) MetricsTable() string {
	if !ob.HasMetrics() {
		return ""
	}
	return ob.o.MetricsTable()
}

// MetricsCSV renders the same rows as CSV ("" when nothing was collected).
func (ob *Observation) MetricsCSV() string {
	if !ob.HasMetrics() {
		return ""
	}
	return ob.o.MetricsCSV()
}

// RunFig11Observed is RunFig11WithConfig with the observability plane
// armed per cfg.Obs: with tracing on, each packet size becomes one trace
// process whose per-component span sums reconstruct the reported Fig. 11
// breakdown; with metrics on, substrate counters and series (PCIe link
// activity, NetDIMM rank occupancy, nMC queue depth, engine event volume)
// fold into the observation. A zero cfg.Obs returns a nil Observation and
// output identical to RunFig11WithConfig.
func RunFig11Observed(cfg Config, sizes []int, switchLatency time.Duration, parallelism int) (_ []Fig11Result, _ *Observation, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(sizes) == 0 {
		sizes = experiments.PaperSizes
	}
	rows, o, err := experiments.Fig11Observed(cfg.spec(), sizes, simT(switchLatency), parallelism, cfg.Obs)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Fig11Result, len(rows))
	for i, r := range rows {
		out[i] = Fig11Result{
			Size:            r.Size,
			DNIC:            fromBreakdown(r.DNIC),
			INIC:            fromBreakdown(r.INIC),
			NetDIMM:         fromBreakdown(r.NetDIMM),
			ReductionVsDNIC: r.ReductionVsDNIC(),
			ReductionVsINIC: r.ReductionVsINIC(),
		}
	}
	return out, newObservation(o), nil
}

// FaultTailResult is one architecture's latency tail over every loss rate
// of a fault sweep, merged from the per-cell sample sets.
type FaultTailResult struct {
	Arch  string
	Count int
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
}

// RunFaultSweepObserved is RunFaultSweepWithConfig with the observability
// plane armed per cfg.Obs (retransmit/backoff and NVDIMM-P recovery spans,
// path outcome counters, fault tallies, engine probes), plus the
// per-architecture cross-rate latency tails merged from every cell's
// histogram. Tails are returned regardless of cfg.Obs; the Observation is
// nil when cfg.Obs is zero.
func RunFaultSweepObserved(cfg Config, rates []float64, packets int, seed uint64, parallelism int) (_ []FaultSweepResult, _ []FaultTailResult, _ *Observation, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.001, 0.01, 0.05, 0.1, 0.2}
	}
	fcfg := experiments.DefaultFaultSweepConfig()
	fcfg.Packets = packets
	fcfg.Seed = seed
	rows, o, err := experiments.FaultSweepObserved(cfg.spec(), rates, fcfg, parallelism, cfg.Obs)
	if err != nil {
		return nil, nil, nil, err
	}
	out := make([]FaultSweepResult, len(rows))
	for i, r := range rows {
		out[i] = FaultSweepResult{
			Arch:      r.Arch,
			LossRate:  r.LossRate,
			Mean:      toDuration(r.Mean),
			P50:       toDuration(r.P50),
			P99:       toDuration(r.P99),
			Delivered: r.Delivered,
			Failed:    r.Failed,
			Counters:  r.Counters,
		}
	}
	var tails []FaultTailResult
	for _, t := range experiments.FaultTails(rows) {
		tails = append(tails, FaultTailResult{
			Arch:  t.Arch,
			Count: t.Count,
			Mean:  toDuration(t.Mean),
			P50:   toDuration(t.P50),
			P99:   toDuration(t.P99),
		})
	}
	return out, tails, newObservation(o), nil
}

// RunMixedChannelObserved is RunMixedChannelWithConfig with the
// observability plane armed per cfg.Obs: DDR controller transaction spans
// and queue depth, NetDIMM device metrics, the NVDIMM-P
// outstanding-transaction series and an engine probe, all under one
// "mixed" cell. A zero cfg.Obs returns a nil Observation and output
// identical to RunMixedChannelWithConfig.
func RunMixedChannelObserved(cfg Config, n int, seed uint64) (_ MixedChannelResult, _ *Observation, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return MixedChannelResult{}, nil, err
	}
	r, o, err := experiments.MixedChannelObserved(cfg.spec(), n, seed, cfg.Obs)
	if err != nil {
		return MixedChannelResult{}, nil, err
	}
	return MixedChannelResult{
		DDRReads:          r.DDRReads,
		NetDIMMReads:      r.NetDIMMReads,
		DDRMean:           toDuration(r.DDRMeanLatency),
		NetDIMMMean:       toDuration(r.NetDIMMMean),
		OutOfOrder:        r.OutOfOrder,
		MaxOutstandingIDs: r.MaxOutstandingIDs,
	}, newObservation(o), nil
}
