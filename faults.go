package netdimm

import (
	"time"

	"netdimm/internal/experiments"
	"netdimm/internal/stats"
)

// FaultCounters tallies injected faults and recovery actions for one sweep
// cell; it re-exports the internal stats type.
type FaultCounters = stats.FaultCounters

// FaultSweepResult is one (architecture, loss rate) cell of the fault
// sweep: one-way latency statistics over delivered packets plus the cell's
// fault and recovery counters.
type FaultSweepResult struct {
	Arch      string
	LossRate  float64
	Mean      time.Duration
	P50       time.Duration
	P99       time.Duration
	Delivered int
	Failed    int
	Counters  FaultCounters
}

// RunFaultSweep measures one-way latency degradation under injected frame
// loss for dNIC, iNIC and NetDIMM on the default configuration. rates are
// the injected per-traversal loss probabilities (nil uses a representative
// sweep from lossless to 20%); packets is the delivery count per cell
// (0 = 200).
func RunFaultSweep(rates []float64, packets int, seed uint64, parallelism int) ([]FaultSweepResult, error) {
	return RunFaultSweepWithConfig(DefaultConfig(), rates, packets, seed, parallelism)
}

// RunFaultSweepWithConfig is RunFaultSweep on the system described by cfg.
// Only the drop probability is swept; every other fault knob — corruption,
// port drops, NVDIMM-P RDY loss, the retry/backoff policy — comes from
// cfg.Fault, so a lossy scenario shapes the whole sweep. A configuration
// that cannot make progress (for example 100% loss with an unlimited retry
// budget) is terminated by the per-cell event-budget watchdog and reported
// as an error rather than hanging.
func RunFaultSweepWithConfig(cfg Config, rates []float64, packets int, seed uint64, parallelism int) (_ []FaultSweepResult, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.001, 0.01, 0.05, 0.1, 0.2}
	}
	fcfg := experiments.DefaultFaultSweepConfig()
	fcfg.Packets = packets
	fcfg.Seed = seed
	rows, err := experiments.FaultSweep(cfg.spec(), rates, fcfg, parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]FaultSweepResult, len(rows))
	for i, r := range rows {
		out[i] = FaultSweepResult{
			Arch:      r.Arch,
			LossRate:  r.LossRate,
			Mean:      toDuration(r.Mean),
			P50:       toDuration(r.P50),
			P99:       toDuration(r.P99),
			Delivered: r.Delivered,
			Failed:    r.Failed,
			Counters:  r.Counters,
		}
	}
	return out, nil
}
