package netdimm

import (
	"fmt"
	"time"

	"netdimm/internal/experiments"
	"netdimm/internal/netfunc"
	"netdimm/internal/sim"
	"netdimm/internal/workload"
)

// ClusterName identifies one of the three Facebook production cluster
// types whose traffic the trace experiments replay.
type ClusterName string

// The three clusters of Sec. 5.1.
const (
	Database  ClusterName = "database"
	Webserver ClusterName = "webserver"
	Hadoop    ClusterName = "hadoop"
)

// AllClusters lists the clusters in presentation order.
var AllClusters = []ClusterName{Database, Webserver, Hadoop}

func (c ClusterName) internal() workload.Cluster {
	switch c {
	case Webserver:
		return workload.Webserver
	case Hadoop:
		return workload.Hadoop
	default:
		return workload.Database
	}
}

// NFKind identifies a network function for the interference study.
type NFKind string

// The two functions bracketing the packet-processing spectrum.
const (
	L3Forwarding NFKind = "L3F"
	DeepInspect  NFKind = "DPI"
)

func (k NFKind) internal() netfunc.Kind {
	if k == DeepInspect {
		return netfunc.DPI
	}
	return netfunc.L3F
}

func simT(d time.Duration) sim.Time { return sim.FromDuration(d) }

// mustValid asserts that a built-in configuration validates; the default
// runners pass DefaultConfig, which is pinned valid by the test suite.
func mustValid(err error) {
	if err != nil {
		panic(err)
	}
}

// guard converts a panic escaping an experiment into an error, so the
// public WithConfig entry points never panic on caller input: a
// configuration that passes Validate but trips a deeper invariant (an
// address-map or derivation panic) surfaces as a returned error instead of
// crashing the caller. Every Run*WithConfig defers it over a named error
// return.
func guard(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok {
		*err = fmt.Errorf("netdimm: experiment failed: %w", e)
		return
	}
	*err = fmt.Errorf("netdimm: experiment failed: %v", r)
}

// Fig4Result is one row of the Fig. 4 motivation experiment.
type Fig4Result struct {
	Size          int
	DNIC          time.Duration
	DNICZcpy      time.Duration
	INIC          time.Duration
	INICZcpy      time.Duration
	PCIeShare     float64
	PCIeShareZcpy float64
}

// RunFig4 regenerates Fig. 4: one-way latency of the four baseline NIC
// configurations with the PCIe overhead share.
//
// parallelism fans the sweep's independent cells over worker goroutines:
// <= 0 uses all cores (runtime.GOMAXPROCS), 1 runs sequentially, N uses at
// most N workers. Results are identical for every setting. The same knob
// appears on every Run* sweep below.
func RunFig4(sizes []int, switchLatency time.Duration, parallelism int) []Fig4Result {
	out, err := RunFig4WithConfig(DefaultConfig(), sizes, switchLatency, parallelism)
	mustValid(err)
	return out
}

// RunFig4WithConfig is RunFig4 on the system described by cfg.
func RunFig4WithConfig(cfg Config, sizes []int, switchLatency time.Duration, parallelism int) (_ []Fig4Result, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = experiments.PaperSizes
	}
	rows := experiments.Fig4(cfg.spec(), sizes, simT(switchLatency), parallelism)
	out := make([]Fig4Result, len(rows))
	for i, r := range rows {
		out[i] = Fig4Result{
			Size:          r.Size,
			DNIC:          toDuration(r.DNIC),
			DNICZcpy:      toDuration(r.DNICZcpy),
			INIC:          toDuration(r.INIC),
			INICZcpy:      toDuration(r.INICZcpy),
			PCIeShare:     r.PCIeShare,
			PCIeShareZcpy: r.PCIeShareZcpy,
		}
	}
	return out, nil
}

// Fig5Result is one memory-pressure level of Fig. 5.
type Fig5Result struct {
	InjectDelay   time.Duration
	BandwidthGbps float64
	MemReadNs     float64
}

// RunFig5 regenerates Fig. 5: iperf bandwidth under MLC-style memory
// pressure. A nil delay slice uses a representative sweep from idle to
// maximum pressure.
func RunFig5(delays []time.Duration, parallelism int) []Fig5Result {
	out, err := RunFig5WithConfig(DefaultConfig(), delays, parallelism)
	mustValid(err)
	return out
}

// RunFig5WithConfig is RunFig5 on the system described by cfg (its DRAM
// timing, memory-controller config and link rate).
func RunFig5WithConfig(cfg Config, delays []time.Duration, parallelism int) (_ []Fig5Result, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var ds []sim.Time
	if len(delays) == 0 {
		ds = []sim.Time{
			sim.Second, // no interference
			2 * sim.Microsecond, 500 * sim.Nanosecond, 100 * sim.Nanosecond,
			50 * sim.Nanosecond, 20 * sim.Nanosecond, 10 * sim.Nanosecond, 5 * sim.Nanosecond,
		}
	} else {
		for _, d := range delays {
			ds = append(ds, simT(d))
		}
	}
	rows := experiments.Fig5(cfg.spec(), ds, experiments.DefaultFig5Config(), parallelism)
	out := make([]Fig5Result, len(rows))
	for i, r := range rows {
		out[i] = Fig5Result{
			InjectDelay:   toDuration(r.InjectDelay),
			BandwidthGbps: r.BandwidthGbps,
			MemReadNs:     r.MemReadNs,
		}
	}
	return out, nil
}

// Fig7Result is one DMA memory request of the Fig. 7 locality study.
type Fig7Result struct {
	RelCacheline int
	RelTime      time.Duration
	Burst        int
}

// RunFig7 regenerates Fig. 7: the per-cacheline DMA request trace of six
// received 1514B packets.
func RunFig7() []Fig7Result {
	out, err := RunFig7WithConfig(DefaultConfig())
	mustValid(err)
	return out
}

// RunFig7WithConfig is RunFig7 on the system described by cfg (its link
// rate and PCIe DMA bandwidth).
func RunFig7WithConfig(cfg Config) (_ []Fig7Result, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pts := experiments.Fig7(cfg.spec())
	out := make([]Fig7Result, len(pts))
	for i, p := range pts {
		out[i] = Fig7Result{RelCacheline: p.RelLine, RelTime: toDuration(p.RelTime), Burst: p.Burst}
	}
	return out, nil
}

// Fig11Result is one packet size's breakdown comparison.
type Fig11Result struct {
	Size            int
	DNIC            LatencyBreakdown
	INIC            LatencyBreakdown
	NetDIMM         LatencyBreakdown
	ReductionVsDNIC float64
	ReductionVsINIC float64
}

// RunFig11 regenerates Fig. 11: the one-way latency breakdown of dNIC,
// iNIC and NetDIMM across packet sizes.
func RunFig11(sizes []int, switchLatency time.Duration, parallelism int) ([]Fig11Result, error) {
	return RunFig11WithConfig(DefaultConfig(), sizes, switchLatency, parallelism)
}

// RunFig11WithConfig is RunFig11 on the system described by cfg.
func RunFig11WithConfig(cfg Config, sizes []int, switchLatency time.Duration, parallelism int) (_ []Fig11Result, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = experiments.PaperSizes
	}
	rows, err := experiments.Fig11(cfg.spec(), sizes, simT(switchLatency), parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]Fig11Result, len(rows))
	for i, r := range rows {
		out[i] = Fig11Result{
			Size:            r.Size,
			DNIC:            fromBreakdown(r.DNIC),
			INIC:            fromBreakdown(r.INIC),
			NetDIMM:         fromBreakdown(r.NetDIMM),
			ReductionVsDNIC: r.ReductionVsDNIC(),
			ReductionVsINIC: r.ReductionVsINIC(),
		}
	}
	return out, nil
}

// Fig12aResult is one (cluster, switch latency) cell of Fig. 12(a).
type Fig12aResult struct {
	Cluster       ClusterName
	SwitchLatency time.Duration
	DNICMean      time.Duration
	INICMean      time.Duration
	NetDIMMMean   time.Duration
	NormVsDNIC    float64
	NormVsINIC    float64
}

// RunFig12a regenerates Fig. 12(a): cluster trace replay across switch
// latencies. packets controls the trace length per cell (0 = 1000).
func RunFig12a(packets int, seed uint64, parallelism int) ([]Fig12aResult, error) {
	return RunFig12aWithConfig(DefaultConfig(), packets, seed, parallelism)
}

// RunFig12aWithConfig is RunFig12a on the system described by cfg.
func RunFig12aWithConfig(cfg Config, packets int, seed uint64, parallelism int) (_ []Fig12aResult, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if packets <= 0 {
		packets = 1000
	}
	rows, err := experiments.Fig12a(cfg.spec(), workload.Clusters, experiments.PaperSwitchLatencies, packets, seed, parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]Fig12aResult, len(rows))
	for i, r := range rows {
		out[i] = Fig12aResult{
			Cluster:       ClusterName(r.Cluster.String()),
			SwitchLatency: toDuration(r.SwitchLatency),
			DNICMean:      toDuration(r.DNICMean),
			INICMean:      toDuration(r.INICMean),
			NetDIMMMean:   toDuration(r.NetDIMMMean),
			NormVsDNIC:    r.NormVsDNIC(),
			NormVsINIC:    r.NormVsINIC(),
		}
	}
	return out, nil
}

// Fig12bResult is one (cluster, function) cell of Fig. 12(b).
type Fig12bResult struct {
	Cluster   ClusterName
	Function  NFKind
	INICNs    float64
	NetDIMMNs float64
	Norm      float64
}

// RunFig12b regenerates Fig. 12(b): co-running application memory latency
// under DPI and L3F, NetDIMM normalised to iNIC.
func RunFig12b(parallelism int) []Fig12bResult {
	out, err := RunFig12bWithConfig(DefaultConfig(), parallelism)
	mustValid(err)
	return out
}

// RunFig12bWithConfig is RunFig12b on the system described by cfg.
func RunFig12bWithConfig(cfg Config, parallelism int) (_ []Fig12bResult, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows := experiments.Fig12b(cfg.spec(), workload.Clusters,
		[]netfunc.Kind{netfunc.DPI, netfunc.L3F}, experiments.DefaultFig12bConfig(), parallelism)
	out := make([]Fig12bResult, len(rows))
	for i, r := range rows {
		out[i] = Fig12bResult{
			Cluster:   ClusterName(r.Cluster.String()),
			Function:  NFKind(r.Kind.String()),
			INICNs:    r.INICAppNs,
			NetDIMMNs: r.NetDIMMNs,
			Norm:      r.Norm(),
		}
	}
	return out, nil
}

// HeadlineResult carries the abstract's summary numbers as measured.
type HeadlineResult struct {
	AvgReductionVsDNIC     float64
	AvgReductionVsINIC     float64
	TraceReductionBySwitch map[time.Duration]float64
	DPIWorst               float64
	L3FBest                float64
}

// RunHeadline measures the paper's headline numbers.
func RunHeadline(packets int, parallelism int) (HeadlineResult, error) {
	return RunHeadlineWithConfig(DefaultConfig(), packets, parallelism)
}

// RunHeadlineWithConfig is RunHeadline on the system described by cfg.
func RunHeadlineWithConfig(cfg Config, packets int, parallelism int) (_ HeadlineResult, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return HeadlineResult{}, err
	}
	if packets <= 0 {
		packets = 500
	}
	h, err := experiments.RunHeadline(cfg.spec(), packets, parallelism)
	if err != nil {
		return HeadlineResult{}, err
	}
	out := HeadlineResult{
		AvgReductionVsDNIC:     h.AvgReductionVsDNIC,
		AvgReductionVsINIC:     h.AvgReductionVsINIC,
		TraceReductionBySwitch: make(map[time.Duration]float64, len(h.TraceReductionBySwitch)),
		DPIWorst:               h.DPIWorst,
		L3FBest:                h.L3FBest,
	}
	for k, v := range h.TraceReductionBySwitch {
		out.TraceReductionBySwitch[toDuration(k)] = v
	}
	return out, nil
}

// GenerateTrace produces a deterministic synthetic trace for a cluster:
// n events with the published size and locality distributions.
func GenerateTrace(cluster ClusterName, n int, seed uint64) []TraceEvent {
	gen := workload.NewGenerator(cluster.internal(), 0, seed)
	events := gen.Generate(n)
	out := make([]TraceEvent, len(events))
	for i, e := range events {
		out[i] = TraceEvent{
			At:       toDuration(e.At),
			Size:     e.Size,
			Locality: e.Locality.String(),
		}
	}
	return out
}

// TraceEvent is one packet arrival of a generated trace.
type TraceEvent struct {
	At       time.Duration
	Size     int
	Locality string
}
