package netdimm

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunFaultSweep(t *testing.T) {
	rows, err := RunFaultSweep([]float64{0, 0.05}, 60, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 3 archs x 2 rates", len(rows))
	}
	for _, r := range rows {
		if r.Delivered == 0 {
			t.Errorf("%s at loss %g delivered nothing", r.Arch, r.LossRate)
		}
		if r.LossRate == 0 && r.Counters.Any() {
			t.Errorf("%s lossless row counted faults: %+v", r.Arch, r.Counters)
		}
		if r.LossRate > 0 && r.Counters.Retransmits == 0 {
			t.Errorf("%s at loss %g: no retransmits", r.Arch, r.LossRate)
		}
		if r.P99 < r.P50 || r.P50 <= 0 {
			t.Errorf("%s: implausible percentiles p50=%v p99=%v", r.Arch, r.P50, r.P99)
		}
	}
}

func TestRunFaultSweepScenarioConfig(t *testing.T) {
	cfg, err := LoadScenario("lossy-1pct")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Fault.Enabled() {
		t.Fatal("lossy-1pct scenario has faults disabled")
	}
	rows, err := RunFaultSweepWithConfig(cfg, []float64{0.01}, 40, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestRunFaultSweepRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault.DropProb = 1.5
	if _, err := RunFaultSweepWithConfig(cfg, nil, 10, 0, 1); err == nil {
		t.Fatal("DropProb 1.5 accepted")
	}
	cfg = DefaultConfig()
	cfg.Cores = 0
	if _, err := RunFaultSweepWithConfig(cfg, nil, 10, 0, 1); err == nil {
		t.Fatal("invalid base config accepted")
	}
}

// The livelock acceptance path through the public facade: unlimited retries
// at 100% loss must come back as a watchdog error, not a hang or a panic.
func TestRunFaultSweepWatchdogError(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := RunFaultSweep([]float64{1}, 30, 0, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("livelock configuration returned no error")
		}
		if !strings.Contains(err.Error(), "watchdog") {
			t.Errorf("err = %v, want a watchdog diagnostic", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("RunFaultSweep hung on a livelock configuration")
	}
}

// guard must convert panics escaping an experiment into returned errors so
// no public WithConfig entry point panics on caller input.
func TestGuardRecoversPanics(t *testing.T) {
	boom := errors.New("boom")
	call := func(f func()) (err error) {
		defer guard(&err)
		f()
		return nil
	}
	if err := call(func() {}); err != nil {
		t.Fatalf("clean call: %v", err)
	}
	if err := call(func() { panic(boom) }); !errors.Is(err, boom) {
		t.Fatalf("error panic: got %v, want wrapped boom", err)
	}
	err := call(func() { panic("string panic") })
	if err == nil || !strings.Contains(err.Error(), "string panic") {
		t.Fatalf("string panic: got %v", err)
	}
}

func TestTableShowsFaultRowOnlyWhenEnabled(t *testing.T) {
	if strings.Contains(DefaultConfig().Table(), "Fault injection") {
		t.Error("default Table() mentions fault injection")
	}
	cfg := DefaultConfig()
	cfg.Fault.DropProb = 0.01
	if !strings.Contains(cfg.Table(), "Fault injection") {
		t.Error("Table() missing the fault row with faults enabled")
	}
}
