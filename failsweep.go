package netdimm

import (
	"time"

	"netdimm/internal/experiments"
	"netdimm/internal/sim"
)

// FailSweepResult is one (architecture, outage duration) cell of the
// failure sweep: how the cell absorbed a scheduled spine outage — the
// failover record, the ARQ recovery record, and the latency tail split by
// whether the packet was born before, during or after the outage window.
type FailSweepResult struct {
	Arch string
	// Outage is the swept spine-down window length; 0 is the baseline cell.
	Outage time.Duration
	// Delivered counts packets that completed end to end (a packet
	// delivered through a retransmission counts once); Failed counts
	// packets abandoned at the retry cap.
	Delivered int
	Failed    int
	// DuringOffered / DuringDelivered count packets born inside the outage
	// window and how many of them still delivered.
	DuringOffered   int
	DuringDelivered int
	// Dropped counts frames lost anywhere before recovery: queue tail
	// drops, down-element drops, burst losses and downed-uplink refusals.
	Dropped int
	// OutageDrops counts frames eaten by a down element (in-flight frames
	// included); BurstDrops frames lost to the Gilbert–Elliott process;
	// Rerouted frames ECMP steered off their primary spine; Degraded
	// frames forced onto the single-path fallback.
	OutageDrops uint64
	BurstDrops  uint64
	Rerouted    uint64
	Degraded    uint64
	// Retransmits counts ARQ retransmissions; Recovered counts packets
	// that delivered only through a retransmitted frame.
	Retransmits uint64
	Recovered   int
	// TimeToReroute is the delay from outage start to the first failover
	// routing decision, or -1 when nothing was rerouted.
	TimeToReroute time.Duration
	// MeanRecovery is the mean end-to-end latency of Recovered packets.
	MeanRecovery time.Duration
	// End-to-end latency percentiles by delivery instant relative to the
	// outage window (zero when the window saw no deliveries).
	P99Before  time.Duration
	P999Before time.Duration
	P99During  time.Duration
	P999During time.Duration
	P99After   time.Duration
	P999After  time.Duration
	// TailInflation is P99After / P99Before — post-recovery tail inflation.
	TailInflation float64
}

// RunFailSweep runs the failure sweep on the default configuration: for
// each architecture and outage duration, 32 hosts on a 2-spine/4-leaf
// clos exchange cluster-mix traffic at 30% offered load while one spine
// is down for the given window, ECMP fails flows over to the surviving
// spine, and every sender recovers lost frames through the NIC's
// ack-timeout ARQ. outages is the duration axis (nil = {0, 5µs, 20µs,
// 60µs}; 0 is the baseline), packets the total arrival count per cell
// (0 = 2400).
func RunFailSweep(outages []time.Duration, packets int, seed uint64, parallelism int) ([]FailSweepResult, error) {
	return RunFailSweepWithConfig(DefaultConfig(), outages, packets, seed, parallelism)
}

// RunFailSweepWithConfig is RunFailSweep on the system described by cfg.
// The traffic shape and sharding come from cfg.Load (a zero Hosts means
// 32), the clos shape from cfg.Fabric (zero = 2 spines × 4 leaves), and
// any background failure schedule — extra outage windows, burst loss —
// plus the ARQ retry knobs from cfg.Fault.
func RunFailSweepWithConfig(cfg Config, outages []time.Duration, packets int, seed uint64, parallelism int) (_ []FailSweepResult, err error) {
	rows, _, err := RunFailSweepObserved(cfg, outages, packets, seed, parallelism)
	return rows, err
}

// RunFailSweepObserved is RunFailSweepWithConfig with the observability
// plane armed per cfg.Obs: with metrics on, each cell publishes delivery,
// drop, reroute and retransmit counters plus engine probes. A zero
// cfg.Obs returns a nil Observation and output identical to
// RunFailSweepWithConfig.
func RunFailSweepObserved(cfg Config, outages []time.Duration, packets int, seed uint64, parallelism int) (_ []FailSweepResult, _ *Observation, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	var axis []sim.Time
	if outages != nil {
		axis = make([]sim.Time, len(outages))
		for i, d := range outages {
			axis[i] = sim.FromDuration(d)
		}
	}
	fcfg := experiments.DefaultFailSweepConfig()
	fcfg.Packets = packets
	fcfg.Seed = seed
	rows, o, err := experiments.FailSweepObserved(cfg.spec(), axis, fcfg, parallelism, cfg.Obs)
	if err != nil {
		return nil, nil, err
	}
	out := make([]FailSweepResult, len(rows))
	for i, r := range rows {
		ttr := time.Duration(-1)
		if r.TimeToReroute >= 0 {
			ttr = toDuration(r.TimeToReroute)
		}
		out[i] = FailSweepResult{
			Arch:            r.Arch,
			Outage:          toDuration(r.Outage),
			Delivered:       r.Delivered,
			Failed:          r.Failed,
			DuringOffered:   r.DuringOffered,
			DuringDelivered: r.DuringDelivered,
			Dropped:         r.Dropped,
			OutageDrops:     r.OutageDrops,
			BurstDrops:      r.BurstDrops,
			Rerouted:        r.Rerouted,
			Degraded:        r.Degraded,
			Retransmits:     r.Retransmits,
			Recovered:       r.Recovered,
			TimeToReroute:   ttr,
			MeanRecovery:    toDuration(r.MeanRecovery),
			P99Before:       toDuration(r.P99Before),
			P999Before:      toDuration(r.P999Before),
			P99During:       toDuration(r.P99During),
			P999During:      toDuration(r.P999During),
			P99After:        toDuration(r.P99After),
			P999After:       toDuration(r.P999After),
			TailInflation:   r.TailInflation,
		}
	}
	return out, newObservation(o), nil
}
