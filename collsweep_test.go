package netdimm

import (
	"strings"
	"testing"
)

func TestRunCollSweep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Collective.PayloadBytes = 8 << 10
	rows, err := RunCollSweepWithConfig(cfg, []int{4, 8}, []string{"allreduce"}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 3 archs x 2 rank counts", len(rows))
	}
	for _, r := range rows {
		if r.Op != "allreduce" {
			t.Errorf("op %q, want allreduce", r.Op)
		}
		if want := 2 * (r.Ranks - 1); r.Steps != want {
			t.Errorf("%s ranks=%d: steps %d, want %d", r.Arch, r.Ranks, r.Steps, want)
		}
		if r.Completion <= 0 || r.Dropped != 0 {
			t.Errorf("%s ranks=%d: completion %v dropped %d", r.Arch, r.Ranks, r.Completion, r.Dropped)
		}
		if r.LinkUtilization <= 0 || r.LinkUtilization > 1 {
			t.Errorf("%s ranks=%d: link utilisation %g", r.Arch, r.Ranks, r.LinkUtilization)
		}
	}
	// More ranks means a deeper ring schedule, so completion must grow
	// monotonically within each architecture.
	for a := 0; a < 3; a++ {
		if rows[2*a].Completion >= rows[2*a+1].Completion {
			t.Errorf("%s: completion at 4 ranks %v >= at 8 ranks %v",
				rows[2*a].Arch, rows[2*a].Completion, rows[2*a+1].Completion)
		}
	}
}

func TestRunCollSweepScenarioConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Collective = CollectiveConfig{Op: "broadcast", Ranks: 8, PayloadBytes: 4 << 10}
	rows, err := RunCollSweepWithConfig(cfg, nil, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want the scenario's pinned (op, ranks) per arch", len(rows))
	}
	for _, r := range rows {
		if r.Op != "broadcast" || r.Ranks != 8 || r.PayloadBytes != 4<<10 {
			t.Errorf("row %+v, want the pinned broadcast/8/4KiB cell", r)
		}
	}
}

func TestRunCollSweepRejectsInvalidInput(t *testing.T) {
	if _, err := RunCollSweep([]int{1}, nil, 0, 1); err == nil {
		t.Fatal("rank count below 2 accepted")
	}
	if _, err := RunCollSweep(nil, []string{"allgather"}, 0, 1); err == nil {
		t.Fatal("unknown op accepted")
	}
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := RunCollSweepWithConfig(cfg, []int{4}, nil, 0, 1); err == nil {
		t.Fatal("invalid base config accepted")
	}
}

func TestRunCollSweepObserved(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Obs.Metrics = true
	cfg.Collective.PayloadBytes = 4 << 10
	rows, o, err := RunCollSweepObserved(cfg, []int{4}, []string{"reducescatter"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("nil observation with metrics enabled")
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if csv := o.MetricsCSV(); !strings.Contains(csv, "completion_ns") {
		t.Errorf("metrics CSV missing completion_ns:\n%s", csv)
	}
}

func TestTableShowsCollectiveRowOnlyWhenSet(t *testing.T) {
	if strings.Contains(DefaultConfig().Table(), "Collective") {
		t.Error("default Table() mentions the collective sweep")
	}
	cfg := DefaultConfig()
	cfg.Collective.Op = "allreduce"
	if !strings.Contains(cfg.Table(), "allreduce, 4-128 ranks, 65536B payload") {
		t.Errorf("Table() missing or wrong collective row:\n%s", cfg.Table())
	}
}
