package netdimm

import (
	"fmt"
	"time"

	"netdimm/internal/driver"
	"netdimm/internal/ethernet"
	"netdimm/internal/nic"
	"netdimm/internal/sim"
	"netdimm/internal/stats"
)

// Machine is one simulated server endpoint with a particular NIC
// architecture. Machines are single-goroutine objects; build one per
// endpoint per experiment.
type Machine struct {
	impl driver.Machine
}

// Name reports the configuration ("dNIC", "dNIC.zcpy", "iNIC",
// "iNIC.zcpy", "NetDIMM").
func (m *Machine) Name() string { return m.impl.Name() }

// NewDNIC builds a Table 1 server with a discrete x8 PCIe Gen4 NIC,
// optionally with a zero-copy driver.
func NewDNIC(zeroCopy bool) *Machine {
	return &Machine{impl: driver.NewDNICMachine(zeroCopy)}
}

// NewDNICWithConfig builds a discrete-NIC server from a configuration: the
// PCIe attachment link and driver costs derive from cfg.
func NewDNICWithConfig(cfg Config, zeroCopy bool) (*Machine, error) {
	d, err := cfg.derive()
	if err != nil {
		return nil, err
	}
	return &Machine{impl: d.NewDNIC(zeroCopy)}, nil
}

// NewINIC builds a Table 1 server with a CPU-integrated NIC, optionally
// with a zero-copy driver.
func NewINIC(zeroCopy bool) *Machine {
	return &Machine{impl: driver.NewINICMachine(zeroCopy)}
}

// NewINICWithConfig builds an integrated-NIC server from a configuration.
func NewINICWithConfig(cfg Config, zeroCopy bool) (*Machine, error) {
	d, err := cfg.derive()
	if err != nil {
		return nil, err
	}
	return &Machine{impl: d.NewINIC(zeroCopy)}, nil
}

// NewNetDIMM builds a Table 1 server with a 16GB NetDIMM: device, NET_0
// memory zone, allocCache and the Algorithm 1 driver. The seed determines
// nCache replacement randomness; distinct endpoints should use distinct
// seeds.
func NewNetDIMM(seed uint64) (*Machine, error) {
	nd, err := driver.NewNetDIMMMachine(seed)
	if err != nil {
		return nil, err
	}
	return &Machine{impl: nd}, nil
}

// NewNetDIMMWithConfig builds a NetDIMM server from a configuration: the
// device geometry, local DRAM timing and NET_0 zone placement derive from
// cfg.
func NewNetDIMMWithConfig(cfg Config, seed uint64) (*Machine, error) {
	d, err := cfg.derive()
	if err != nil {
		return nil, err
	}
	nd, err := d.NewNetDIMM(seed)
	if err != nil {
		return nil, err
	}
	return &Machine{impl: nd}, nil
}

// LatencyBreakdown is a one-way packet latency decomposed into the
// components of the paper's Fig. 11.
type LatencyBreakdown struct {
	TxCopy       time.Duration
	RxCopy       time.Duration
	TxDMA        time.Duration
	RxDMA        time.Duration
	Wire         time.Duration
	IOReg        time.Duration
	TxFlush      time.Duration
	RxInvalidate time.Duration
	Total        time.Duration
}

func toDuration(t sim.Time) time.Duration {
	return time.Duration(int64(t) / int64(sim.Nanosecond))
}

func fromBreakdown(b stats.Breakdown) LatencyBreakdown {
	return LatencyBreakdown{
		TxCopy:       toDuration(b[stats.TxCopy]),
		RxCopy:       toDuration(b[stats.RxCopy]),
		TxDMA:        toDuration(b[stats.TxDMA]),
		RxDMA:        toDuration(b[stats.RxDMA]),
		Wire:         toDuration(b[stats.Wire]),
		IOReg:        toDuration(b[stats.IOReg]),
		TxFlush:      toDuration(b[stats.TxFlush]),
		RxInvalidate: toDuration(b[stats.RxInvalidate]),
		Total:        toDuration(b.Total()),
	}
}

// String renders the non-zero components.
func (l LatencyBreakdown) String() string {
	s := ""
	add := func(name string, v time.Duration) {
		if v > 0 {
			s += fmt.Sprintf("%s=%v ", name, v)
		}
	}
	add("txCopy", l.TxCopy)
	add("rxCopy", l.RxCopy)
	add("txDMA", l.TxDMA)
	add("rxDMA", l.RxDMA)
	add("wire", l.Wire)
	add("ioReg", l.IOReg)
	add("txFlush", l.TxFlush)
	add("rxInvalidate", l.RxInvalidate)
	return s + fmt.Sprintf("total=%v", l.Total)
}

// OneWayLatency sends one packet of the given size from tx to rx through a
// single switch with the given port-to-port latency, and returns the
// latency decomposition. Repeated calls on stateful machines (NetDIMM)
// reflect warmed device state.
func OneWayLatency(tx, rx *Machine, packetSize int, switchLatency time.Duration) (LatencyBreakdown, error) {
	if packetSize <= 0 {
		return LatencyBreakdown{}, fmt.Errorf("netdimm: packet size must be positive, got %d", packetSize)
	}
	if tx == nil || rx == nil {
		return LatencyBreakdown{}, fmt.Errorf("netdimm: nil machine")
	}
	fabric := ethernet.NewFabric(sim.FromDuration(switchLatency))
	b := driver.OneWay(tx.impl, rx.impl, nic.Packet{Size: packetSize}, fabric)
	return fromBreakdown(b), nil
}

// OneWayLatencyWithConfig is OneWayLatency over a fabric derived from the
// configuration (its link rate and PHY model come from cfg rather than the
// Table 1 defaults).
func OneWayLatencyWithConfig(cfg Config, tx, rx *Machine, packetSize int, switchLatency time.Duration) (LatencyBreakdown, error) {
	if packetSize <= 0 {
		return LatencyBreakdown{}, fmt.Errorf("netdimm: packet size must be positive, got %d", packetSize)
	}
	if tx == nil || rx == nil {
		return LatencyBreakdown{}, fmt.Errorf("netdimm: nil machine")
	}
	d, err := cfg.derive()
	if err != nil {
		return LatencyBreakdown{}, err
	}
	fabric := d.Fabric(sim.FromDuration(switchLatency))
	b := driver.OneWay(tx.impl, rx.impl, nic.Packet{Size: packetSize}, fabric)
	return fromBreakdown(b), nil
}
