package netdimm

import (
	"testing"
	"time"

	"netdimm/internal/fault"
)

func TestRunFailSweep(t *testing.T) {
	outages := []time.Duration{0, 20 * time.Microsecond}
	rows, err := RunFailSweep(outages, 300, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 3 archs x 2 outages", len(rows))
	}
	for _, r := range rows {
		if r.Delivered != 300 || r.Failed != 0 {
			t.Errorf("%s outage=%v: delivered %d failed %d, want 300/0 (unlimited retries)",
				r.Arch, r.Outage, r.Delivered, r.Failed)
		}
		if r.Outage == 0 {
			if r.Rerouted != 0 || r.TimeToReroute != -1 {
				t.Errorf("%s baseline: rerouted %d, reroute %v — want 0 and -1",
					r.Arch, r.Rerouted, r.TimeToReroute)
			}
			continue
		}
		if r.Rerouted == 0 {
			t.Errorf("%s outage=%v: no flows failed over", r.Arch, r.Outage)
		}
		if r.TimeToReroute < 0 || r.TimeToReroute > r.Outage {
			t.Errorf("%s outage=%v: time-to-reroute %v outside [0, outage]", r.Arch, r.Outage, r.TimeToReroute)
		}
	}
}

func TestRunFailSweepScenarioConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Load = LoadConfig{Hosts: 8}
	cfg.Fabric = FabricConfig{Leaves: 2, Spines: 2}
	rows, err := RunFailSweepWithConfig(cfg, []time.Duration{10 * time.Microsecond}, 120, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestRunFailSweepObservedMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Load = LoadConfig{Hosts: 8}
	cfg.Obs.Metrics = true
	rows, ob, err := RunFailSweepObserved(cfg, []time.Duration{0}, 90, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if ob == nil || !ob.HasMetrics() {
		t.Fatal("observed run returned no metrics")
	}
}

func TestRunFailSweepRejectsInvalidInput(t *testing.T) {
	if _, err := RunFailSweep([]time.Duration{-time.Microsecond}, 50, 0, 1); err == nil {
		t.Fatal("negative outage duration accepted")
	}
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := RunFailSweepWithConfig(cfg, nil, 50, 0, 1); err == nil {
		t.Fatal("invalid base config accepted")
	}
	cfg = DefaultConfig()
	cfg.Fault.Failure.Outages = []fault.Outage{{Kind: fault.OutageSpine, Index: 42, StartNs: 0, EndNs: 100}}
	if _, err := RunFailSweepWithConfig(cfg, []time.Duration{0}, 50, 0, 1); err == nil {
		t.Fatal("schedule naming a nonexistent spine accepted")
	}
}
