package netdimm

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"netdimm/internal/campaign"
	"netdimm/internal/experiments"
	"netdimm/internal/stats"
	"netdimm/internal/workload"
)

// CampaignSchemas is the CSV contract registry of every experiment family
// a campaign grid can name: the exact header each family emits and the
// minimum data-row count a healthy cell produces. The campaign runner
// validates every cell CSV against it before declaring success.
func CampaignSchemas() map[string]campaign.Schema {
	return map[string]campaign.Schema{
		"fig4": {Header: []string{"size", "dnic_ns", "dnic_zcpy_ns", "inic_ns", "inic_zcpy_ns",
			"pcie_share", "pcie_share_zcpy"}, MinRows: 1},
		"fig11": {Header: []string{"size", "arch", "txCopy_ns", "rxCopy_ns", "txDMA_ns", "rxDMA_ns",
			"wire_ns", "ioReg_ns", "txFlush_ns", "rxInvalidate_ns", "total_ns"}, MinRows: 3},
		"fig12a": {Header: []string{"cluster", "switch_ns", "dnic_mean_ns", "inic_mean_ns",
			"netdimm_mean_ns", "norm_dnic", "norm_inic"}, MinRows: 3},
		"ablation": {Header: []string{"section", "variant", "latency_ns", "rate"}, MinRows: 4},
		"faultsweep": {Header: []string{"arch", "loss_rate", "mean_ns", "p50_ns", "p99_ns",
			"delivered", "failed", "retransmits", "frames_dropped", "frames_corrupted", "mem_retries"}, MinRows: 3},
		"loadsweep": {Header: []string{"arch", "offered_load", "mean_ns", "p50_ns", "p99_ns", "p999_ns",
			"delivered", "dropped", "egress_max_depth", "egress_queue_delay_ns", "rx_max_depth", "link_util"}, MinRows: 3},
		"racksweep": {Header: []string{"arch", "racks", "ecn", "offered_load", "mean_ns", "p50_ns", "p99_ns", "p999_ns",
			"delivered", "dropped", "marked", "cross_rack",
			"leaf_max_depth", "spine_max_depth", "rx_max_depth", "link_util"}, MinRows: 6},
		"failsweep": {Header: []string{"arch", "outage_ns", "delivered", "failed", "dropped",
			"outage_drops", "burst_drops", "rerouted", "retransmits", "recovered",
			"reroute_ns", "mean_recovery_ns", "during_offered", "during_delivered",
			"p99_before_ns", "p99_during_ns", "p99_after_ns", "p999_after_ns", "tail_inflation"}, MinRows: 3},
		"collsweep": {Header: []string{"arch", "op", "ranks", "payload_bytes", "steps",
			"completion_ns", "step_skew_ns", "bytes_on_wire", "frames", "delivered",
			"dropped", "marked", "link_util"}, MinRows: 3},
	}
}

// LoadCampaignGrid reads and validates a campaign grid file against the
// family registry.
func LoadCampaignGrid(path string) (campaign.Grid, error) {
	g, err := campaign.LoadGrid(path)
	if err != nil {
		return campaign.Grid{}, err
	}
	if err := g.Validate(CampaignSchemas()); err != nil {
		return campaign.Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// RunCampaign executes a validated campaign grid to completion: every cell
// runs through the Run*WithConfig/*Observed facade, the produced CSVs are
// schema-validated, and a timestamped directory (per-cell CSVs, optional
// metrics CSVs, manifest with host/git/seed/config-hash, run log, grouped
// summary tables) is written under outRoot. gridPath, when non-empty, is
// fingerprinted into the manifest; logw mirrors the run log (nil discards
// it). Cell failures are collected, not fatal mid-run: the report is
// always written, and the returned error summarizes any failures.
func RunCampaign(grid campaign.Grid, gridPath, outRoot string, logw io.Writer) (*campaign.RunReport, error) {
	if err := grid.Validate(CampaignSchemas()); err != nil {
		return nil, err
	}
	r := &campaign.Runner{
		Grid:        grid,
		OutRoot:     outRoot,
		Schemas:     CampaignSchemas(),
		Exec:        runCampaignCell,
		GitRevision: campaign.GitRevision("."),
		GridPath:    gridPath,
		Log:         logw,
	}
	return r.Run()
}

// runCampaignCell executes one planned campaign cell through the public
// facade. The inner experiment always runs sequentially (parallelism 1):
// the campaign fans out across cells, and nesting pools would oversubscribe
// without changing any result.
func runCampaignCell(c campaign.Cell) (campaign.Result, error) {
	cfg, err := LoadScenario(c.Scenario)
	if err != nil {
		return campaign.Result{}, err
	}
	if c.Hosts > 0 {
		cfg.Load.Hosts = c.Hosts
	}
	if c.Shards > 0 {
		cfg.Load.Shards = c.Shards
	}
	if c.Metrics {
		cfg.Obs.Metrics = true
	}
	if c.Trace {
		cfg.Obs.Trace = true
	}
	res := campaign.Result{ConfigHash: configHash(cfg)}
	switchLat := 100 * time.Nanosecond
	if c.SwitchNs > 0 {
		switchLat = time.Duration(c.SwitchNs) * time.Nanosecond
	}
	schema := CampaignSchemas()[c.Experiment]

	switch c.Experiment {
	case "fig4":
		rows, err := RunFig4WithConfig(cfg, c.Sizes, switchLat, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{fmt.Sprint(r.Size),
				fmt.Sprint(r.DNIC.Nanoseconds()), fmt.Sprint(r.DNICZcpy.Nanoseconds()),
				fmt.Sprint(r.INIC.Nanoseconds()), fmt.Sprint(r.INICZcpy.Nanoseconds()),
				fmt.Sprintf("%.4f", r.PCIeShare), fmt.Sprintf("%.4f", r.PCIeShareZcpy)})
		}
		res.CSV = stats.CSV(schema.Header, out)
		res.WantRows = lenOr(len(c.Sizes), len(experiments.PaperSizes))

	case "fig11":
		rows, ob, err := RunFig11Observed(cfg, c.Sizes, switchLat, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		emit := func(size int, arch string, b LatencyBreakdown) {
			out = append(out, []string{fmt.Sprint(size), arch,
				fmt.Sprint(b.TxCopy.Nanoseconds()), fmt.Sprint(b.RxCopy.Nanoseconds()),
				fmt.Sprint(b.TxDMA.Nanoseconds()), fmt.Sprint(b.RxDMA.Nanoseconds()),
				fmt.Sprint(b.Wire.Nanoseconds()), fmt.Sprint(b.IOReg.Nanoseconds()),
				fmt.Sprint(b.TxFlush.Nanoseconds()), fmt.Sprint(b.RxInvalidate.Nanoseconds()),
				fmt.Sprint(b.Total.Nanoseconds())})
		}
		for _, r := range rows {
			emit(r.Size, "dNIC", r.DNIC)
			emit(r.Size, "iNIC", r.INIC)
			emit(r.Size, "NetDIMM", r.NetDIMM)
		}
		res.CSV = stats.CSV(schema.Header, out)
		res.WantRows = 3 * lenOr(len(c.Sizes), len(experiments.PaperSizes))
		res.MetricsCSV = ob.MetricsCSV()
		res.TraceJSON = captureTrace(ob, c.Trace)

	case "fig12a":
		rows, err := RunFig12aWithConfig(cfg, c.Packets, c.Seed, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{string(r.Cluster), fmt.Sprint(r.SwitchLatency.Nanoseconds()),
				fmt.Sprint(r.DNICMean.Nanoseconds()), fmt.Sprint(r.INICMean.Nanoseconds()),
				fmt.Sprint(r.NetDIMMMean.Nanoseconds()),
				fmt.Sprintf("%.4f", r.NormVsDNIC), fmt.Sprintf("%.4f", r.NormVsINIC)})
		}
		res.CSV = stats.CSV(schema.Header, out)
		res.WantRows = len(workload.Clusters) * len(experiments.PaperSwitchLatencies)

	case "ablation":
		rep, err := RunAblationsWithConfig(cfg, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rep.Prefetch {
			out = append(out, []string{"prefetch", fmt.Sprintf("degree-%d", r.Degree),
				fmt.Sprint(r.MeanReadLat.Nanoseconds()), fmt.Sprintf("%.4f", r.HitRate)})
		}
		for _, r := range rep.Clone {
			out = append(out, []string{"clone", r.Strategy, fmt.Sprint(r.PerClone.Nanoseconds()), ""})
		}
		for _, r := range rep.Alloc {
			out = append(out, []string{"alloc", r.Strategy, fmt.Sprint(r.PerAlloc.Nanoseconds()),
				fmt.Sprintf("%.4f", r.FPMRate)})
		}
		for _, r := range rep.HeaderCache {
			out = append(out, []string{"headercache", r.Strategy, fmt.Sprint(r.HeaderRead.Nanoseconds()),
				fmt.Sprintf("%.4f", r.HitRate)})
		}
		res.CSV = stats.CSV(schema.Header, out)

	case "faultsweep":
		rows, _, ob, err := RunFaultSweepObserved(cfg, c.Rates, c.Packets, c.Seed, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Arch, fmt.Sprintf("%g", r.LossRate),
				fmt.Sprint(r.Mean.Nanoseconds()), fmt.Sprint(r.P50.Nanoseconds()), fmt.Sprint(r.P99.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Failed),
				fmt.Sprint(r.Counters.Retransmits), fmt.Sprint(r.Counters.FramesDropped),
				fmt.Sprint(r.Counters.FramesCorrupted), fmt.Sprint(r.Counters.MemRetries)})
		}
		res.CSV = stats.CSV(schema.Header, out)
		res.WantRows = 3 * lenOr(len(c.Rates), 6)
		res.MetricsCSV = ob.MetricsCSV()
		res.TraceJSON = captureTrace(ob, c.Trace)

	case "loadsweep":
		rows, _, ob, err := RunLoadSweepObserved(cfg, c.Rates, c.Packets, c.Seed, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Arch, fmt.Sprintf("%g", r.OfferedLoad),
				fmt.Sprint(r.Mean.Nanoseconds()), fmt.Sprint(r.P50.Nanoseconds()),
				fmt.Sprint(r.P99.Nanoseconds()), fmt.Sprint(r.P999.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Dropped),
				fmt.Sprint(r.EgressMaxDepth), fmt.Sprint(r.EgressQueueDelay.Nanoseconds()),
				fmt.Sprint(r.RxMaxDepth), fmt.Sprintf("%.4f", r.LinkUtilization)})
		}
		res.CSV = stats.CSV(schema.Header, out)
		if len(c.Rates) > 0 {
			res.WantRows = 3 * len(c.Rates)
		}
		res.MetricsCSV = ob.MetricsCSV()
		res.TraceJSON = captureTrace(ob, c.Trace)

	case "racksweep":
		rows, _, ob, err := RunRackSweepObserved(cfg, c.Racks, c.Rates, c.Packets, c.Seed, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Arch, fmt.Sprint(r.Racks), ecnString(r.ECN), fmt.Sprintf("%g", r.OfferedLoad),
				fmt.Sprint(r.Mean.Nanoseconds()), fmt.Sprint(r.P50.Nanoseconds()),
				fmt.Sprint(r.P99.Nanoseconds()), fmt.Sprint(r.P999.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Dropped),
				fmt.Sprint(r.Marked), fmt.Sprint(r.CrossRack),
				fmt.Sprint(r.LeafMaxDepth), fmt.Sprint(r.SpineMaxDepth),
				fmt.Sprint(r.RxMaxDepth), fmt.Sprintf("%.4f", r.LinkUtilization)})
		}
		res.CSV = stats.CSV(schema.Header, out)
		if len(c.Racks) > 0 && len(c.Rates) > 0 {
			res.WantRows = 3 * 2 * len(c.Racks) * len(c.Rates)
		}
		res.MetricsCSV = ob.MetricsCSV()
		res.TraceJSON = captureTrace(ob, c.Trace)

	case "failsweep":
		rows, ob, err := RunFailSweepObserved(cfg, c.Outages, c.Packets, c.Seed, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Arch, fmt.Sprint(r.Outage.Nanoseconds()),
				fmt.Sprint(r.Delivered), fmt.Sprint(r.Failed), fmt.Sprint(r.Dropped),
				fmt.Sprint(r.OutageDrops), fmt.Sprint(r.BurstDrops),
				fmt.Sprint(r.Rerouted), fmt.Sprint(r.Retransmits), fmt.Sprint(r.Recovered),
				fmt.Sprint(r.TimeToReroute.Nanoseconds()), fmt.Sprint(r.MeanRecovery.Nanoseconds()),
				fmt.Sprint(r.DuringOffered), fmt.Sprint(r.DuringDelivered),
				fmt.Sprint(r.P99Before.Nanoseconds()), fmt.Sprint(r.P99During.Nanoseconds()),
				fmt.Sprint(r.P99After.Nanoseconds()), fmt.Sprint(r.P999After.Nanoseconds()),
				fmt.Sprintf("%.3f", r.TailInflation)})
		}
		res.CSV = stats.CSV(schema.Header, out)
		res.WantRows = 3 * lenOr(len(c.Outages), 4)
		res.MetricsCSV = ob.MetricsCSV()
		res.TraceJSON = captureTrace(ob, c.Trace)

	case "collsweep":
		if c.Payload > 0 {
			cfg.Collective.PayloadBytes = c.Payload
		}
		rows, ob, err := RunCollSweepObserved(cfg, c.Ranks, c.Ops, c.Seed, 1)
		if err != nil {
			return res, err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Arch, r.Op, fmt.Sprint(r.Ranks),
				fmt.Sprint(r.PayloadBytes), fmt.Sprint(r.Steps),
				fmt.Sprint(r.Completion.Nanoseconds()), fmt.Sprint(r.StepSkew.Nanoseconds()),
				fmt.Sprint(r.BytesOnWire), fmt.Sprint(r.Frames), fmt.Sprint(r.Delivered),
				fmt.Sprint(r.Dropped), fmt.Sprint(r.Marked),
				fmt.Sprintf("%.4f", r.LinkUtilization)})
		}
		res.CSV = stats.CSV(schema.Header, out)
		if len(c.Ranks) > 0 && len(c.Ops) > 0 {
			res.WantRows = 3 * len(c.Ranks) * len(c.Ops)
		}
		res.MetricsCSV = ob.MetricsCSV()
		res.TraceJSON = captureTrace(ob, c.Trace)

	default:
		return res, fmt.Errorf("unknown experiment family %q", c.Experiment)
	}
	return res, nil
}

// configHash fingerprints a resolved configuration for the manifest: two
// cells with equal hashes simulated the same system.
func configHash(cfg Config) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	return campaign.SHA256Hex(data)
}

// captureTrace renders an observation's Chrome trace-event JSON when the
// cell armed tracing ("" otherwise, so the runner writes no trace file).
func captureTrace(ob *Observation, armed bool) string {
	if !armed {
		return ""
	}
	var sb strings.Builder
	if err := ob.WriteTrace(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// lenOr returns n, or the family default when the axis was left empty.
func lenOr(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}

func ecnString(on bool) string {
	if on {
		return "on"
	}
	return "off"
}
