package netdimm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Named scenarios: curated variations of Table 1 that exercise the
// configuration plane end to end. Each is DefaultConfig with a handful of
// fields changed, so a scenario file needs to list only its deltas.
func scenarioPresets() map[string]Config {
	ddr5 := DefaultConfig()
	ddr5.DRAM = "DDR5-4800"

	gen3 := DefaultConfig()
	gen3.PCIe = "x8 PCIe Gen3"

	multi := DefaultConfig()
	multi.NetDIMMs = 4
	multi.MemChannels = 4

	lossy := DefaultConfig()
	lossy.Fault = FaultConfig{
		DropProb:    0.01,
		CorruptProb: 0.001,
		MaxRetries:  8,
		Seed:        1,
	}

	return map[string]Config{
		"table1":          DefaultConfig(),
		"ddr5":            ddr5,
		"pcie-gen3":       gen3,
		"multi-netdimm-4": multi,
		"lossy-1pct":      lossy,
	}
}

// Scenarios lists the named scenario presets in sorted order.
func Scenarios() []string {
	presets := scenarioPresets()
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LoadScenario resolves a scenario argument: a preset name from
// Scenarios(), or a path to a JSON file of Config fields applied on top of
// DefaultConfig. An empty string means "table1". The configuration is
// validated before it is returned.
func LoadScenario(s string) (Config, error) {
	if s == "" {
		s = "table1"
	}
	if cfg, ok := scenarioPresets()[s]; ok {
		return cfg, nil
	}
	if strings.HasSuffix(s, ".json") || strings.ContainsAny(s, "/\\") {
		return LoadScenarioFile(s)
	}
	return Config{}, fmt.Errorf("netdimm: unknown scenario %q (named scenarios: %s; or pass a .json file)",
		s, strings.Join(Scenarios(), ", "))
}

// LoadScenarioFile reads a JSON scenario file.
func LoadScenarioFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("netdimm: scenario: %w", err)
	}
	defer f.Close()
	cfg, err := ReadScenario(f)
	if err != nil {
		return Config{}, fmt.Errorf("netdimm: scenario %s: %w", path, err)
	}
	return cfg, nil
}

// ReadScenario decodes a JSON scenario over DefaultConfig: fields absent
// from the stream keep their Table 1 values, unknown fields are rejected,
// and the result is validated.
func ReadScenario(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
