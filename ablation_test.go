package netdimm

import (
	"bytes"
	"testing"
	"time"
)

func TestRunBandwidth(t *testing.T) {
	rows, err := RunBandwidth(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Sustained {
			t.Errorf("%s not sustained: %.1f/%.1f Gbps", r.Arch, r.AchievedGbps, r.OfferedGbps)
		}
		if r.PerPacketRx <= 0 {
			t.Errorf("%s missing per-packet time", r.Arch)
		}
	}
}

func TestRunAblations(t *testing.T) {
	rep, err := RunAblations(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Prefetch) < 3 || len(rep.Clone) != 4 || len(rep.Alloc) != 3 || len(rep.HeaderCache) != 2 {
		t.Fatalf("report shape: %d/%d/%d/%d",
			len(rep.Prefetch), len(rep.Clone), len(rep.Alloc), len(rep.HeaderCache))
	}
	// FPM is the cheapest copy strategy.
	for _, c := range rep.Clone[1:] {
		if rep.Clone[0].PerClone >= c.PerClone {
			t.Errorf("FPM %v should beat %s %v", rep.Clone[0].PerClone, c.Strategy, c.PerClone)
		}
	}
	// The allocCache keeps the FPM rate at ~1 with the cheapest critical
	// path.
	if rep.Alloc[0].FPMRate < 0.9 || rep.Alloc[0].PerAlloc >= rep.Alloc[1].PerAlloc {
		t.Errorf("allocCache row wrong: %+v", rep.Alloc[0])
	}
}

func TestRunMixedChannel(t *testing.T) {
	r, err := RunMixedChannel(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.DDRReads == 0 || r.NetDIMMReads == 0 {
		t.Fatalf("degenerate mix: %+v", r)
	}
	if r.NetDIMMMean <= r.DDRMean {
		t.Fatal("NetDIMM reads should be slower than DDR reads")
	}
}

func TestReplayTraceFileAPI(t *testing.T) {
	// Generate a trace in memory via the internal writer path used by the
	// CLI, then replay it through the public API.
	events := GenerateTrace(Hadoop, 100, 3)
	if len(events) != 100 {
		t.Fatal("trace generation failed")
	}
	// Round-trip through the binary format.
	var buf bytes.Buffer
	if err := writeTraceForTest(&buf, Hadoop, 3, 100); err != nil {
		t.Fatal(err)
	}
	cluster, rows, err := ReplayTraceFile(&buf, 100*time.Nanosecond, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cluster != "hadoop" {
		t.Fatalf("cluster = %q", cluster)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var nd, dn ReplayResult
	for _, r := range rows {
		switch r.Arch {
		case "NetDIMM":
			nd = r
		case "dNIC":
			dn = r
		}
	}
	if nd.Mean >= dn.Mean {
		t.Fatalf("replay ordering: ND %v vs dNIC %v", nd.Mean, dn.Mean)
	}
}
