// Package netdimm is a discrete-event architectural simulator reproducing
// "NetDIMM: Low-Latency Near-Memory Network Interface Architecture"
// (Alian and Kim, MICRO 2019).
//
// NetDIMM integrates a full network interface into the buffer device of a
// DDR5 DIMM: the NIC shares the DIMM's local DRAM with the host through
// the NVDIMM-P asynchronous memory protocol, eliminating the PCIe
// interconnect from the packet path and replacing driver memory copies
// with in-DRAM RowClone buffer cloning. This package is the public facade
// over the simulator; the models live under internal/:
//
//	sim       — picosecond discrete-event kernel
//	addrmap   — physical address mapping (Fig. 9), flex interleaving (Fig. 10)
//	dram      — DDR4/DDR5 bank-state timing + RowClone FPM/PSM/GCM (Fig. 8)
//	memctrl   — FR-FCFS memory controller (host MCs and the nMC)
//	cache     — LLC with DDIO way restriction, flush/invalidate
//	pcie      — analytical PCIe model (TLPs, posted/non-posted)
//	nvdimmp   — DDR5 asynchronous XRD/RDY/SEND transactions (Fig. 3b)
//	kalloc    — Linux-like zones, NET_i zones, allocCache (Sec. 4.2)
//	nic       — descriptor rings, DMA traces, dNIC and iNIC devices
//	core      — the NetDIMM buffer device: nController, nCache, nPrefetcher
//	ethernet  — 40GbE links, switches, clos fabric
//	driver    — software-stack models incl. Algorithm 1
//	netfunc   — L3 forwarding (LPM trie) and DPI (Aho-Corasick)
//	workload  — cluster trace generators, MLC-style injector
//	experiments — one entry point per paper figure
//
// # Quick start
//
//	tx, _ := netdimm.NewNetDIMM(1)
//	rx, _ := netdimm.NewNetDIMM(2)
//	lat, _ := netdimm.OneWayLatency(tx, rx, 256, 100*time.Nanosecond)
//	fmt.Println(lat.Total, lat.IOReg, lat.TxFlush)
//
// Experiment runners (RunFig4, RunFig5, RunFig7, RunFig11, RunFig12a,
// RunFig12b, RunHeadline) regenerate each figure of the paper's
// evaluation; cmd/netdimm-sim wraps them on the command line.
package netdimm
