module netdimm

go 1.22
