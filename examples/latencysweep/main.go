// Latencysweep reproduces the shape of the paper's Fig. 4 and Fig. 11 on
// the command line: a packet-size sweep over all five NIC configurations
// with the latency breakdown of each, plus NetDIMM's reductions.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netdimm"
)

func main() {
	scenario := flag.String("scenario", "", "system to simulate: a preset name or a JSON config file (default table1)")
	flag.Parse()
	cfg, err := netdimm.LoadScenario(*scenario)
	if err != nil {
		log.Fatal(err)
	}

	const switchLatency = 100 * time.Nanosecond
	sizes := []int{10, 60, 200, 500, 1000, 2000, 4000, 8000}

	fmt.Println("Baseline NIC architectures (Fig. 4):")
	fmt.Printf("%6s  %9s  %9s  %9s  %9s  %10s\n",
		"size", "dNIC", "dNIC.zcpy", "iNIC", "iNIC.zcpy", "pcie.overh")
	fig4, err := netdimm.RunFig4WithConfig(cfg, sizes, switchLatency, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range fig4 {
		fmt.Printf("%6d  %9v  %9v  %9v  %9v  %9.1f%%\n",
			r.Size, r.DNIC, r.DNICZcpy, r.INIC, r.INICZcpy, r.PCIeShare*100)
	}

	fmt.Println("\nNetDIMM vs the baselines (Fig. 11):")
	rows, err := netdimm.RunFig11WithConfig(cfg, sizes, switchLatency, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s  %9s  %9s  %9s  %9s  %9s\n",
		"size", "dNIC", "iNIC", "NetDIMM", "vs dNIC", "vs iNIC")
	var sumD, sumI float64
	for _, r := range rows {
		fmt.Printf("%6d  %9v  %9v  %9v  %8.1f%%  %8.1f%%\n",
			r.Size, r.DNIC.Total, r.INIC.Total, r.NetDIMM.Total,
			r.ReductionVsDNIC*100, r.ReductionVsINIC*100)
		sumD += r.ReductionVsDNIC
		sumI += r.ReductionVsINIC
	}
	n := float64(len(rows))
	fmt.Printf("\naverage reduction: %.1f%% vs dNIC (paper: 49.9%%), %.1f%% vs iNIC (paper: 25.9%%)\n",
		sumD/n*100, sumI/n*100)

	// Where does NetDIMM's time go for an MTU packet?
	for _, r := range rows {
		if r.Size == 2000 {
			fmt.Printf("\n2000B NetDIMM breakdown: %v\n", r.NetDIMM)
			flushShare := float64(r.NetDIMM.TxFlush+r.NetDIMM.RxInvalidate) / float64(r.NetDIMM.Total)
			fmt.Printf("flush+invalidate overhead: %.1f%% of the total (paper: 9.7-15.8%%)\n", flushShare*100)
		}
	}
}
