// Tracereplay generates synthetic Facebook-like cluster traffic (the
// documented substitution for the production traces of paper Sec. 5.1) and
// replays it through the simulated clos fabric under each NIC
// architecture — the Fig. 12(a) experiment.
package main

import (
	"flag"
	"fmt"
	"log"

	"netdimm"
)

func main() {
	scenario := flag.String("scenario", "", "system to simulate: a preset name or a JSON config file (default table1)")
	flag.Parse()
	cfg, err := netdimm.LoadScenario(*scenario)
	if err != nil {
		log.Fatal(err)
	}

	// First show what the three cluster workloads look like.
	for _, cluster := range netdimm.AllClusters {
		events := netdimm.GenerateTrace(cluster, 5000, 42)
		var small, mtu, bytes int
		locs := map[string]int{}
		for _, e := range events {
			if e.Size < 300 {
				small++
			}
			if e.Size == 1514 {
				mtu++
			}
			bytes += e.Size
			locs[e.Locality]++
		}
		fmt.Printf("%-10s mean %4dB  <300B %4.1f%%  MTU %4.1f%%  localities %v\n",
			cluster, bytes/len(events),
			100*float64(small)/float64(len(events)),
			100*float64(mtu)/float64(len(events)), locs)
	}

	// Replay each cluster across the paper's switch-latency sweep.
	fmt.Println("\nFig. 12(a) replay — NetDIMM latency normalized to dNIC and iNIC:")
	rows, err := netdimm.RunFig12aWithConfig(cfg, 1500, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s  %8s  %11s  %11s  %11s  %11s\n",
		"cluster", "switch", "dNIC", "NetDIMM", "norm(dNIC)", "norm(iNIC)")
	for _, r := range rows {
		fmt.Printf("%-10s  %8v  %11v  %11v  %11.3f  %11.3f\n",
			r.Cluster, r.SwitchLatency, r.DNICMean, r.NetDIMMMean, r.NormVsDNIC, r.NormVsINIC)
	}
	fmt.Println("\nLower norm = bigger NetDIMM win. The win shrinks as switch latency")
	fmt.Println("grows (paper: 40.6% -> 25.3% from 25ns to 200ns switches), and")
	fmt.Println("inter-datacenter traffic (database) dilutes it with WAN propagation.")
}
