// Interference reproduces the Fig. 12(b) study: how much does network
// traffic disturb a co-running application's memory latency under an
// integrated NIC vs a NetDIMM, for the two extremes of the packet
// processing spectrum — L3 forwarding (header only) and deep packet
// inspection (full payload)?
//
// It also demonstrates that the two network functions are real
// implementations, not just cost models: an LPM routing table and an
// Aho-Corasick scanner from internal/netfunc drive a tiny functional demo
// before the timing study.
package main

import (
	"flag"
	"fmt"
	"log"

	"netdimm"
	"netdimm/internal/netfunc"
)

func main() {
	scenario := flag.String("scenario", "", "system to simulate: a preset name or a JSON config file (default table1)")
	flag.Parse()
	cfg, err := netdimm.LoadScenario(*scenario)
	if err != nil {
		log.Fatal(err)
	}

	functionalDemo()

	fmt.Println("\nFig. 12(b) — co-running app memory latency, NetDIMM normalized to iNIC:")
	fmt.Printf("%-10s  %-4s  %10s  %10s  %8s  %s\n",
		"cluster", "nf", "iNIC", "NetDIMM", "norm", "meaning")
	rows, err := netdimm.RunFig12bWithConfig(cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		meaning := "NetDIMM interferes less"
		if r.Norm > 1 {
			meaning = "NetDIMM interferes more"
		}
		fmt.Printf("%-10s  %-4s  %8.1fns  %8.1fns  %8.3f  %s\n",
			r.Cluster, r.Function, r.INICNs, r.NetDIMMNs, r.Norm, meaning)
	}
	fmt.Println("\nMechanism: an iNIC DDIOs every packet into the LLC (pollution +")
	fmt.Println("writeback traffic for untouched payload), while a NetDIMM keeps")
	fmt.Println("packets in its local DRAM — L3F reads one header line per packet")
	fmt.Println("(served by nCache), DPI must pull whole payloads over the shared")
	fmt.Println("memory channel (paper: DPI +5.7-15.4%, L3F -9.8-30.9% vs iNIC).")
}

// functionalDemo runs the actual L3F and DPI engines on a few frames.
func functionalDemo() {
	table := netfunc.NewTable()
	table.Insert(netfunc.Route{Prefix: ip(10, 0, 0, 0), Bits: 8, NextHop: 1})
	table.Insert(netfunc.Route{Prefix: ip(10, 1, 0, 0), Bits: 16, NextHop: 2})
	matcher, err := netfunc.NewMatcher("exploit", "malware")
	if err != nil {
		panic(err)
	}
	dpi := &netfunc.Inspector{Matcher: matcher, Table: table}

	fmt.Println("Functional demo — the two network functions at work:")
	for _, f := range []struct {
		dst     netfunc.IPv4
		payload string
	}{
		{ip(10, 0, 9, 9), "GET /index.html"},
		{ip(10, 1, 2, 3), "POST /login user=alice"},
		{ip(10, 1, 2, 3), "this payload carries malware bytes"},
	} {
		frame := buildFrame(f.dst, f.payload)
		hop, err := table.Forward(frame)
		if err != nil {
			fmt.Printf("  L3F: %v -> error %v\n", f.dst, err)
			continue
		}
		d, _ := dpi.Inspect(frame)
		fmt.Printf("  L3F: %v -> port %d   DPI: %v\n", f.dst, hop, verdict(d))
	}
}

func verdict(d netfunc.Decision) string {
	if d.Verdict == netfunc.Dropped {
		return fmt.Sprintf("DROP (matched %d pattern(s))", len(d.Matches))
	}
	return fmt.Sprintf("forward to port %d", d.NextHop)
}

func ip(a, b, c, d byte) netfunc.IPv4 {
	return netfunc.IPv4(a)<<24 | netfunc.IPv4(b)<<16 | netfunc.IPv4(c)<<8 | netfunc.IPv4(d)
}

func buildFrame(dst netfunc.IPv4, payload string) []byte {
	f := make([]byte, 34+len(payload))
	f[30], f[31], f[32], f[33] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	copy(f[34:], payload)
	return f
}
