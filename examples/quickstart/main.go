// Quickstart: build two NetDIMM servers, send one packet between them,
// and print the latency breakdown next to the PCIe-NIC baseline.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netdimm"
)

func main() {
	scenario := flag.String("scenario", "", "system to simulate: a preset name or a JSON config file (default table1)")
	flag.Parse()
	cfg, err := netdimm.LoadScenario(*scenario)
	if err != nil {
		log.Fatal(err)
	}

	// Two servers, each with a NetDIMM (NIC integrated into the DIMM
	// buffer device, packets living in the DIMM's local DRAM).
	tx, err := netdimm.NewNetDIMMWithConfig(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := netdimm.NewNetDIMMWithConfig(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}

	const packet = 256 // bytes
	const switchLatency = 100 * time.Nanosecond

	nd, err := netdimm.OneWayLatencyWithConfig(cfg, tx, rx, packet, switchLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NetDIMM one-way %dB packet:\n  %v\n\n", packet, nd)

	// The same transfer through conventional PCIe NICs.
	txN, err := netdimm.NewDNICWithConfig(cfg, false)
	if err != nil {
		log.Fatal(err)
	}
	rxN, err := netdimm.NewDNICWithConfig(cfg, false)
	if err != nil {
		log.Fatal(err)
	}
	dn, err := netdimm.OneWayLatencyWithConfig(cfg, txN, rxN, packet, switchLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCIe NIC one-way %dB packet:\n  %v\n\n", packet, dn)

	fmt.Printf("NetDIMM is %.1f%% faster: no PCIe round trips (ioReg %v vs %v),\n",
		100*(1-float64(nd.Total)/float64(dn.Total)), nd.IOReg, dn.IOReg)
	fmt.Printf("no driver copies (in-memory cloning: rxCopy %v vs %v),\n", nd.RxCopy, dn.RxCopy)
	fmt.Printf("at the price of cache coherency work (txFlush %v + rxInvalidate %v).\n",
		nd.TxFlush, nd.RxInvalidate)
}
