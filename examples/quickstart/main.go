// Quickstart: build two NetDIMM servers, send one packet between them,
// and print the latency breakdown next to the PCIe-NIC baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"netdimm"
)

func main() {
	// Two servers, each with a 16GB NetDIMM (NIC integrated into the DIMM
	// buffer device, packets living in the DIMM's local DRAM).
	tx, err := netdimm.NewNetDIMM(1)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := netdimm.NewNetDIMM(2)
	if err != nil {
		log.Fatal(err)
	}

	const packet = 256 // bytes
	const switchLatency = 100 * time.Nanosecond

	nd, err := netdimm.OneWayLatency(tx, rx, packet, switchLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NetDIMM one-way %dB packet:\n  %v\n\n", packet, nd)

	// The same transfer through conventional PCIe NICs.
	dn, err := netdimm.OneWayLatency(netdimm.NewDNIC(false), netdimm.NewDNIC(false), packet, switchLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCIe NIC one-way %dB packet:\n  %v\n\n", packet, dn)

	fmt.Printf("NetDIMM is %.1f%% faster: no PCIe round trips (ioReg %v vs %v),\n",
		100*(1-float64(nd.Total)/float64(dn.Total)), nd.IOReg, dn.IOReg)
	fmt.Printf("no driver copies (in-memory cloning: rxCopy %v vs %v),\n", nd.RxCopy, dn.RxCopy)
	fmt.Printf("at the price of cache coherency work (txFlush %v + rxInvalidate %v).\n",
		nd.TxFlush, nd.RxInvalidate)
}
