package netdimm

import (
	"fmt"
	"strings"

	"netdimm/internal/collective"
	"netdimm/internal/fabric"
	"netdimm/internal/fault"
	"netdimm/internal/obs"
	"netdimm/internal/spec"
	"netdimm/internal/workload"
)

// FaultConfig configures deterministic fault injection (packet loss,
// corruption, switch-port tail drops, NVDIMM-P RDY timeouts) and the
// retry/backoff policies that recover from it. It aliases the internal
// fault.Spec so Config converts to the derivation form directly; the zero
// value disables all injection and changes no experiment output.
type FaultConfig = fault.Spec

// ObsConfig selects observability collection: Trace records per-packet
// lifecycle spans for Chrome trace-event export, Metrics collects named
// counters and time series. It aliases the internal obs.Spec so Config
// converts to the derivation form directly; the zero value disables all
// instrumentation and changes no experiment output.
type ObsConfig = obs.Spec

// LoadConfig shapes the rack-scale load sweep's traffic: how many sender
// hosts fan in to the one receiver (the incast knob), which cluster
// distribution and arrival process generate packets, the egress buffer
// depth and the saturation-knee factor. It aliases the internal
// workload.LoadSpec so Config converts to the derivation form directly;
// the zero value selects the sweep defaults and affects no other
// experiment's output.
type LoadConfig = workload.LoadSpec

// FabricConfig shapes the switched network topology: how many leaf (rack)
// and spine switches the clos has, the ECMP flow-hash seed, and the ECN
// congestion signal (marking threshold and sender backoff). It aliases the
// internal fabric.Spec so Config converts to the derivation form directly;
// the zero value is the degenerate single-switch fabric every experiment
// built before the fabric plane existed and changes no output.
type FabricConfig = fabric.Spec

// CollectiveConfig shapes the collective-communication sweep (the
// `collsweep` experiment): which operation runs (ring allreduce, tree
// broadcast, reduce-scatter), over how many ranks, moving how much data in
// what chunk sizes. It aliases the internal collective.Spec so Config
// converts to the derivation form directly; the zero value selects the
// sweep defaults (all three ops over the 4–128 rank grid) and affects no
// other experiment's output.
type CollectiveConfig = collective.Spec

// Config is the simulated system configuration — the paper's Table 1. It is
// the single authoritative system specification: every machine constructor
// and experiment runner derives its per-package parameters (software costs,
// device config, DRAM timing, PCIe link, Ethernet fabric, NET_i zone
// placement) from one validated Config.
type Config struct {
	Cores         int
	CoreGHz       float64
	SuperscalarW  int
	ROBEntries    int
	IQEntries     int
	LQEntries     int
	SQEntries     int
	L1ISizeKB     int
	L1DSizeKB     int
	L2SizeMB      int
	L1ILatCycles  int
	L1DLatCycles  int
	L2LatCycles   int
	DRAM          string
	DRAMSizeGB    int
	MemChannels   int
	NetworkGbps   int
	SwitchLatNs   int
	NetDIMMs      int
	PCIe          string
	NetDIMMSizeGB int
	// Fault injects deterministic network and memory-protocol faults; see
	// FaultConfig. Leave zero for the paper's fault-free experiments.
	Fault FaultConfig
	// Obs enables observability collection; see ObsConfig. Leave zero for
	// uninstrumented runs (the default for every pinned golden output).
	Obs ObsConfig
	// Load shapes the rack-scale load sweep (the `loadsweep` experiment);
	// see LoadConfig. Leave zero for the sweep defaults.
	Load LoadConfig
	// Fabric shapes the switched topology the load and rack sweeps build
	// (leaf/spine clos, ECMP, ECN); see FabricConfig. Leave zero for the
	// single-switch incast.
	Fabric FabricConfig
	// Collective shapes the collective-communication sweep (the `collsweep`
	// experiment); see CollectiveConfig. Leave zero for the sweep defaults.
	Collective CollectiveConfig
}

// DefaultConfig returns Table 1 of the paper.
func DefaultConfig() Config {
	return Config{
		Cores:         8,
		CoreGHz:       3.4,
		SuperscalarW:  3,
		ROBEntries:    40,
		IQEntries:     32,
		LQEntries:     16,
		SQEntries:     16,
		L1ISizeKB:     32,
		L1DSizeKB:     64,
		L2SizeMB:      2,
		L1ILatCycles:  1,
		L1DLatCycles:  2,
		L2LatCycles:   12,
		DRAM:          "DDR4-2400",
		DRAMSizeGB:    16,
		MemChannels:   2,
		NetworkGbps:   40,
		SwitchLatNs:   100,
		NetDIMMs:      1,
		PCIe:          "x8 PCIe Gen4",
		NetDIMMSizeGB: 16,
	}
}

// Validate checks the configuration for internal consistency and returns
// an actionable error for the first violation found: unknown DRAM or PCIe
// strings, impossible cache geometries, more NetDIMMs than DIMM slots, and
// so on. Every entry point that accepts a Config validates it first.
func (c Config) Validate() error {
	return spec.Spec(c).Validate()
}

// spec converts the configuration to the internal derivation form (the two
// structs mirror each other field for field).
func (c Config) spec() spec.Spec { return spec.Spec(c) }

// derive validates the configuration and resolves it into every
// per-package parameter set.
func (c Config) derive() (*spec.Derived, error) { return spec.Spec(c).Derive() }

// Table renders the configuration as the paper's Table 1.
func (c Config) Table() string {
	var sb strings.Builder
	row := func(k, v string) { fmt.Fprintf(&sb, "%-34s %s\n", k, v) }
	sb.WriteString("Table 1: System configuration.\n")
	row("Cores (# cores, freq):", fmt.Sprintf("(%d, %.1fGHz)", c.Cores, c.CoreGHz))
	row("Superscalar", fmt.Sprintf("%d ways", c.SuperscalarW))
	row("ROB/IQ/LQ/SQ entries", fmt.Sprintf("%d/%d/%d/%d", c.ROBEntries, c.IQEntries, c.LQEntries, c.SQEntries))
	row("Caches (size): I/D/L2", fmt.Sprintf("%dKB/%dKB/%dMB", c.L1ISizeKB, c.L1DSizeKB, c.L2SizeMB))
	row("L1I/L1D/L2 latency", fmt.Sprintf("%d/%d/%d cycles", c.L1ILatCycles, c.L1DLatCycles, c.L2LatCycles))
	row("DRAM", fmt.Sprintf("%s/%dGB/%d channels", c.DRAM, c.DRAMSizeGB, c.MemChannels))
	row("Network/Switch latency/#NetDIMM", fmt.Sprintf("%dGbE/%dns/%d", c.NetworkGbps, c.SwitchLatNs, c.NetDIMMs))
	row("PCIe performance", c.PCIe)
	row("NetDIMM capacity", fmt.Sprintf("%dGB (two 8GB ranks)", c.NetDIMMSizeGB))
	if c.Fault.Enabled() {
		row("Fault injection", c.Fault.String())
	}
	if c.Load != (LoadConfig{}) {
		hosts := c.Load.Hosts
		if hosts == 0 {
			hosts = 8
		}
		row("Load sweep", fmt.Sprintf("%d hosts incast, %s/%s traffic",
			hosts, orDefault(c.Load.Cluster, "database"), orDefault(c.Load.Process, "poisson")))
	}
	if c.Fabric != (FabricConfig{}) {
		f := c.Fabric.Resolved()
		ecn := "off"
		if f.ECNThreshold > 0 {
			ecn = fmt.Sprintf("mark@%d, backoff %dns", f.ECNThreshold, f.ECNBackoffNs)
		}
		row("Fabric", fmt.Sprintf("%d leaves x %d spines, ECN %s", f.Leaves, f.Spines, ecn))
	}
	if c.Collective != (CollectiveConfig{}) {
		payload := c.Collective.PayloadBytes
		if payload == 0 {
			payload = collective.DefaultPayloadBytes
		}
		ranks := "4-128 ranks"
		if c.Collective.Ranks != 0 {
			ranks = fmt.Sprintf("%d ranks", c.Collective.Ranks)
		}
		row("Collective", fmt.Sprintf("%s, %s, %dB payload",
			orDefault(c.Collective.Op, "all ops"), ranks, payload))
	}
	return sb.String()
}

// orDefault substitutes def for an empty string.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
