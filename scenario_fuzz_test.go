package netdimm

import (
	"strings"
	"testing"
)

// FuzzReadScenario hardens the scenario-JSON entry point: arbitrary input
// must either fail with an error or produce a configuration that passes
// Validate — never a panic, and never an invalid Config leaking through.
func FuzzReadScenario(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"Cores": 4}`)
	f.Add(`{"DRAM": "DDR5-4800", "NetworkGbps": 100}`)
	f.Add(`{"Fault": {"DropProb": 0.01, "MaxRetries": 8}}`)
	f.Add(`{"Fault": {"DropProb": 2}}`)
	f.Add(`{"Cores": -1}`)
	f.Add(`{"Unknown": true}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"Cores": 1e309}`)
	f.Add("{\"PCIe\": \"x16 PCIe Gen5\", \"Fault\": {\"MemTimeoutProb\": 0.5, \"MemTimeoutNs\": 100}}")
	f.Add(`{"Fault": {"Failure": {"Outages": [{"Kind": "spine", "Index": 0, "StartNs": 1000, "EndNs": 5000}], "Burst": {"BadLossProb": 0.5, "GoodToBad": 0.01, "BadToGood": 0.1}}}}`)
	f.Add(`{"Fault": {"Failure": {"Outages": [{"Kind": "bogus", "StartNs": 5, "EndNs": 5}]}}}`)
	f.Fuzz(func(t *testing.T, data string) {
		cfg, err := ReadScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ReadScenario accepted %q but the config fails Validate: %v", data, verr)
		}
	})
}
