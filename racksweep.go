package netdimm

import (
	"time"

	"netdimm/internal/experiments"
)

// RackSweepResult is one (architecture, racks, ECN, offered load) cell of
// the rack-count sweep: end-to-end latency statistics over delivered
// packets, plus the cell's fabric tallies.
type RackSweepResult struct {
	Arch string
	// Racks is the leaf count of the cell's leaf/spine clos.
	Racks int
	// ECN reports whether the cell ran with marking and sender backoff.
	ECN bool
	// OfferedLoad is each host's injected fraction of its own line rate.
	OfferedLoad float64
	Mean        time.Duration
	P50         time.Duration
	P99         time.Duration
	P999        time.Duration
	// Delivered counts packets that completed end to end; Dropped counts
	// frames tail-dropped at any hop (uplink, leaf or spine queue).
	Delivered int
	Dropped   int
	// Marked counts frames freshly ECN-marked at any fabric queue.
	Marked int
	// CrossRack counts packets whose destination lay in another rack (and
	// therefore crossed the spine layer).
	CrossRack int
	// LeafMaxDepth and SpineMaxDepth are the deepest output queues seen at
	// each fabric layer.
	LeafMaxDepth  int
	SpineMaxDepth int
	// RxMaxDepth is the deepest receiver driver queue across all hosts.
	RxMaxDepth int
	// LinkUtilization is delivered wire occupancy averaged over all host
	// links and the cell's makespan, in [0,1].
	LinkUtilization float64
}

// RackKneeResult is one (arch, racks, ECN) curve's detected saturation
// point: the highest swept load whose p99 stayed within the configured
// knee factor of the lowest swept load's p99. Saturated is false when the
// grid never reached the knee; such a curve (including a single-load
// grid, which cannot bracket a knee) reports the explicit no-knee result
// Knee 0.
type RackKneeResult struct {
	Arch      string
	Racks     int
	ECN       bool
	Knee      float64
	Saturated bool
}

// RunRackSweep runs the rack-count sweep on the default configuration: for
// each architecture, rack count and ECN setting, 256 hosts spread over a
// leaf/spine clos exchange cluster-mix traffic (destinations follow the
// published flow-locality shares, so most database traffic crosses the
// spine layer) and the end-to-end latency distribution is measured over
// every delivered packet. racks is the leaf-count axis (nil = {2, 4, 8}),
// loads are per-host fractions of the line rate (nil = a geometric grid
// bracketing each architecture's knee), packets is the total arrival
// count per cell (0 = 4000).
func RunRackSweep(racks []int, loads []float64, packets int, seed uint64, parallelism int) ([]RackSweepResult, []RackKneeResult, error) {
	return RunRackSweepWithConfig(DefaultConfig(), racks, loads, packets, seed, parallelism)
}

// RunRackSweepWithConfig is RunRackSweep on the system described by cfg.
// The traffic shape — host count, cluster distribution, arrival process,
// port buffering, knee factor, sharding — comes from cfg.Load (a zero
// Hosts means 256); the clos shape and ECN tuning come from cfg.Fabric (a
// pinned Leaves replaces the racks axis, a set ECNThreshold tunes the
// sweep's ECN-on cells). A configuration that cannot drain is terminated
// by the per-cell event-budget watchdog and reported as an error.
func RunRackSweepWithConfig(cfg Config, racks []int, loads []float64, packets int, seed uint64, parallelism int) (_ []RackSweepResult, _ []RackKneeResult, err error) {
	rows, knees, _, err := RunRackSweepObserved(cfg, racks, loads, packets, seed, parallelism)
	return rows, knees, err
}

// RunRackSweepObserved is RunRackSweepWithConfig with the observability
// plane armed per cfg.Obs: with metrics on, each cell publishes delivery,
// drop and mark counters, fabric depth gauges and engine probes. A zero
// cfg.Obs returns a nil Observation and output identical to
// RunRackSweepWithConfig.
func RunRackSweepObserved(cfg Config, racks []int, loads []float64, packets int, seed uint64, parallelism int) (_ []RackSweepResult, _ []RackKneeResult, _ *Observation, err error) {
	defer guard(&err)
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	rcfg := experiments.DefaultRackSweepConfig()
	rcfg.Packets = packets
	rcfg.Seed = seed
	rows, knees, o, err := experiments.RackSweepObserved(cfg.spec(), racks, loads, rcfg, parallelism, cfg.Obs)
	if err != nil {
		return nil, nil, nil, err
	}
	out := make([]RackSweepResult, len(rows))
	for i, r := range rows {
		out[i] = RackSweepResult{
			Arch:            r.Arch,
			Racks:           r.Racks,
			ECN:             r.ECN,
			OfferedLoad:     r.Load,
			Mean:            toDuration(r.Mean),
			P50:             toDuration(r.P50),
			P99:             toDuration(r.P99),
			P999:            toDuration(r.P999),
			Delivered:       r.Delivered,
			Dropped:         r.Dropped,
			Marked:          r.Marked,
			CrossRack:       r.CrossRack,
			LeafMaxDepth:    r.LeafMaxDepth,
			SpineMaxDepth:   r.SpineMaxDepth,
			RxMaxDepth:      r.RxMaxDepth,
			LinkUtilization: r.LinkUtilization,
		}
	}
	kout := make([]RackKneeResult, len(knees))
	for i, k := range knees {
		kout[i] = RackKneeResult{Arch: k.Arch, Racks: k.Racks, ECN: k.ECN, Knee: k.Knee, Saturated: k.Saturated}
	}
	return out, kout, newObservation(o), nil
}
